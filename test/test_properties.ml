(* Model-based property tests (qcheck): random operation sequences
   executed against the real modules and simple reference models in
   lockstep.  These run single-threaded inside the simulator (concurrency
   properties live in the exploration tests); what they pin down is the
   sequential semantics of each protocol. *)

module Engine = Mach_sim.Sim_engine
module K = Mach_ksync.Ksync
module Zalloc = Mach_kern.Zalloc
module Vm_page = Mach_vm.Vm_page
open Test_support

let prop name gen f = QCheck.Test.make ~count:300 ~name gen f

(* Scripts are plain lists of small non-negative ints, interpreted as a
   choice among the ops legal in the current model state ([choice mod
   n_legal]).  This keeps the generators shrink-friendly: qcheck shrinks
   by dropping elements and shrinking ints towards zero, and any
   shrunken script is still a valid (shorter, more canonical)
   operation sequence rather than a precondition violation. *)
let script_gen len = QCheck.(list_of_size (Gen.int_range 1 len) (int_range 0 11))

(* ------------------------------------------------------------------ *)
(* Zone allocator vs a set model                                        *)
(* ------------------------------------------------------------------ *)

let zalloc_ops_gen =
  QCheck.(list_of_size (Gen.int_range 1 60) (int_range 0 2))
  (* 0 = try_alloc, 1 = free one allocated element, 2 = query in_use *)

let zalloc_conformance ops =
  in_sim (fun () ->
      let capacity = 5 in
      let z = Zalloc.create ~capacity () in
      let model = Hashtbl.create 8 in
      List.for_all
        (fun op ->
          match op with
          | 0 -> (
              match Zalloc.try_alloc z with
              | Some e ->
                  (* must be fresh and capacity respected *)
                  let fresh = not (Hashtbl.mem model e) in
                  Hashtbl.replace model e ();
                  fresh && Hashtbl.length model <= capacity
              | None -> Hashtbl.length model = capacity)
          | 1 -> (
              match Hashtbl.fold (fun e () _ -> Some e) model None with
              | Some e ->
                  Zalloc.free z e;
                  Hashtbl.remove model e;
                  true
              | None -> true)
          | _ -> Zalloc.in_use z = Hashtbl.length model)
        ops)

(* ------------------------------------------------------------------ *)
(* Page pool vs a counter model                                         *)
(* ------------------------------------------------------------------ *)

let pool_conformance ops =
  in_sim (fun () ->
      let pages = 6 in
      let pool = Vm_page.create ~pages () in
      let held = ref [] in
      List.for_all
        (fun op ->
          match op with
          | 0 -> (
              match Vm_page.alloc pool with
              | Some p ->
                  let fresh = not (List.mem p !held) in
                  held := p :: !held;
                  fresh
              | None -> List.length !held = pages)
          | 1 -> (
              match !held with
              | p :: rest ->
                  Vm_page.free pool p;
                  held := rest;
                  true
              | [] -> true)
          | _ -> Vm_page.free_count pool = pages - List.length !held)
        ops)

(* ------------------------------------------------------------------ *)
(* Refcount balance                                                     *)
(* ------------------------------------------------------------------ *)

let refcount_balance clones =
  in_sim (fun () ->
      let r = K.Ref.make () in
      List.iter (fun () -> K.Ref.clone r) (List.init clones (fun _ -> ()));
      let ok_count = K.Ref.count r = clones + 1 in
      (* release all clones: never `Last while the creator ref remains *)
      let all_live =
        List.for_all
          (fun () -> K.Ref.release r = `Live)
          (List.init clones (fun _ -> ()))
      in
      ok_count && all_live && K.Ref.release r = `Last)

(* ------------------------------------------------------------------ *)
(* Complex lock vs a readers/writer state model (single thread, so only
   non-blocking transitions are generated)                              *)
(* ------------------------------------------------------------------ *)

type rw_model = { mutable m_readers : int; mutable m_writer : bool }

let rw_conformance script =
  in_sim (fun () ->
      let l = K.Clock.make ~can_sleep:true () in
      let m = { m_readers = 0; m_writer = false } in
      (* each script element picks among the currently-legal ops *)
      List.for_all
        (fun choice ->
          let legal =
            List.concat
              [
                (if (not m.m_writer) && m.m_readers = 0 then
                   [
                     (fun () ->
                       K.Clock.lock_write l;
                       m.m_writer <- true;
                       true);
                   ]
                 else []);
                (if not m.m_writer then
                   [
                     (fun () ->
                       K.Clock.lock_read l;
                       m.m_readers <- m.m_readers + 1;
                       true);
                   ]
                 else []);
                (if m.m_writer then
                   [
                     (fun () ->
                       K.Clock.lock_done l;
                       m.m_writer <- false;
                       true);
                     (fun () ->
                       K.Clock.lock_write_to_read l;
                       m.m_writer <- false;
                       m.m_readers <- 1;
                       true);
                   ]
                 else []);
                (if m.m_readers > 0 && not m.m_writer then
                   [
                     (fun () ->
                       K.Clock.lock_done l;
                       m.m_readers <- m.m_readers - 1;
                       true);
                   ]
                 else []);
                (if m.m_readers = 1 && not m.m_writer then
                   [
                     (fun () ->
                       (* single reader: upgrade always succeeds *)
                       let failed = K.Clock.lock_read_to_write l in
                       m.m_readers <- 0;
                       m.m_writer <- true;
                       not failed);
                   ]
                 else []);
              ]
          in
          let conforms =
            match legal with
            | [] -> true
            | ops -> (List.nth ops (choice mod List.length ops)) ()
          in
          (* observable state must agree with the model after every op *)
          conforms
          && K.Clock.read_count l = m.m_readers
          && K.Clock.held_for_write l = m.m_writer
          && K.Clock.lock_try_write l
             = ((not m.m_writer) && m.m_readers = 0)
          && (* undo the probe if it succeeded *)
          (if (not m.m_writer) && m.m_readers = 0 then begin
             K.Clock.lock_done l;
             true
           end
           else true))
        script)

(* ------------------------------------------------------------------ *)
(* Complex lock option matrix (Sleep x Recursive) vs a lockstep model   *)
(* ------------------------------------------------------------------ *)

(* Unlike [rw_conformance] above (plain readers/writer), this drives the
   full Appendix B option matrix: recursive write re-acquisition depth,
   recursive reads, downgrade, and the persistence of the recursive
   holder across a full release — each op mirrored into a model whose
   observable fields must agree after every step. *)
type cx_model = {
  mutable x_readers : int;  (* read_count, recursive reads included *)
  mutable x_rec_reads : int;  (* reads taken via the recursive path *)
  mutable x_writer : bool;
  mutable x_depth : int;  (* recursive re-acquisitions of the write side *)
  mutable x_recursive : bool;  (* recursive holder is (still) this thread *)
}

let cx_conformance ~can_sleep ~use_recursive script =
  in_sim (fun () ->
      let l = K.Clock.make ~can_sleep () in
      let m =
        {
          x_readers = 0;
          x_rec_reads = 0;
          x_writer = false;
          x_depth = 0;
          x_recursive = false;
        }
      in
      List.for_all
        (fun choice ->
          let ops = ref [] in
          let op f = ops := f :: !ops in
          (* write acquire blocks unless the lock is entirely free *)
          if (not m.x_writer) && m.x_readers = 0 then
            op (fun () ->
                K.Clock.lock_write l;
                m.x_writer <- true);
          (* recursive re-acquisition and recursive reads *)
          if use_recursive && m.x_writer && not m.x_recursive then
            op (fun () ->
                K.Clock.lock_set_recursive l;
                m.x_recursive <- true);
          if m.x_recursive && m.x_writer then begin
            op (fun () ->
                K.Clock.lock_write l;
                m.x_depth <- m.x_depth + 1);
            op (fun () ->
                K.Clock.lock_read l;
                m.x_readers <- m.x_readers + 1;
                m.x_rec_reads <- m.x_rec_reads + 1)
          end;
          if m.x_recursive && m.x_depth = 0 then
            op (fun () ->
                K.Clock.lock_clear_recursive l;
                m.x_recursive <- false);
          (* plain read acquire: the recursive holder takes the recursive
             path even when it no longer holds the write side *)
          if not m.x_writer then
            op (fun () ->
                K.Clock.lock_read l;
                m.x_readers <- m.x_readers + 1;
                if m.x_recursive then m.x_rec_reads <- m.x_rec_reads + 1);
          (* release: mirrors lock_done's branch order (reads drain
             first, then recursion depth, then the write slot) *)
          if m.x_readers > 0 || m.x_writer then
            op (fun () ->
                K.Clock.lock_done l;
                if m.x_readers > 0 then begin
                  m.x_readers <- m.x_readers - 1;
                  if m.x_recursive && m.x_rec_reads > 0 then
                    m.x_rec_reads <- m.x_rec_reads - 1
                end
                else if m.x_depth > 0 then m.x_depth <- m.x_depth - 1
                else m.x_writer <- false);
          (* downgrade (fatal with outstanding recursive writes) *)
          if m.x_writer && m.x_depth = 0 then
            op (fun () ->
                K.Clock.lock_write_to_read l;
                m.x_writer <- false;
                m.x_readers <- m.x_readers + 1);
          (* upgrade: single reader, never from the recursive path *)
          if m.x_readers = 1 && (not m.x_writer) && not m.x_recursive then
            op (fun () ->
                let failed = K.Clock.lock_read_to_write l in
                m.x_readers <- 0;
                m.x_writer <- true;
                if failed then Engine.fatal "single-reader upgrade failed");
          let ops = List.rev !ops in
          (match ops with
          | [] -> ()
          | _ -> (List.nth ops (choice mod List.length ops)) ());
          K.Clock.read_count l = m.x_readers
          && K.Clock.held_for_write l = m.x_writer
          && K.Clock.can_sleep l = can_sleep)
        script)

(* ------------------------------------------------------------------ *)
(* Gated (deactivate-style) reference count vs a lockstep model         *)
(* ------------------------------------------------------------------ *)

let gated_conformance script =
  in_sim (fun () ->
      let obj = K.Slock.make ~name:"gated-obj" () in
      let g = K.Ref.Gated.make ~name:"gated" ~object_lock:obj () in
      let m_open = ref true and m_n = ref 0 in
      List.for_all
        (fun choice ->
          K.Slock.lock obj;
          let ops = ref [] in
          let op f = ops := f :: !ops in
          op (fun () ->
              (* enter succeeds iff the gate is open *)
              let entered = K.Ref.Gated.enter g in
              if entered <> !m_open then
                Engine.fatal "enter result disagrees with model";
              if entered then incr m_n);
          if !m_n > 0 then
            op (fun () ->
                K.Ref.Gated.exit g;
                decr m_n);
          (* single-threaded: draining and waiting are only legal when
             nothing is in progress (they would block forever) *)
          if !m_n = 0 then begin
            op (fun () ->
                K.Ref.Gated.close_and_drain g;
                m_open := false);
            op (fun () -> K.Ref.Gated.wait_until_zero g)
          end;
          if not !m_open then
            op (fun () ->
                K.Ref.Gated.reopen g;
                m_open := true);
          (List.nth !ops (choice mod List.length !ops)) ();
          let ok = K.Ref.Gated.in_progress g = !m_n in
          K.Slock.unlock obj;
          ok)
        script)

(* ------------------------------------------------------------------ *)
(* Event ids                                                            *)
(* ------------------------------------------------------------------ *)

let fresh_events_unique n =
  in_sim (fun () ->
      let evs = List.init n (fun _ -> K.Ev.fresh_event ()) in
      List.length (List.sort_uniq compare evs) = n
      && List.for_all (fun e -> e <> K.Ev.null_event) evs)

let wakeup_no_waiters_is_zero ev =
  in_sim (fun () -> K.Ev.thread_wakeup (abs ev + 1) = 0)

(* ------------------------------------------------------------------ *)
(* VM map vs an interval model, and Coarse/Range lockstep               *)
(* ------------------------------------------------------------------ *)

module Vm_map = Mach_vm.Vm_map
module Vm_fault = Mach_vm.Vm_fault

let spans m = List.map (fun e -> (e.Vm_map.va_start, e.Vm_map.va_end)) (Vm_map.entries m)

(* Random allocate / allocate_at / deallocate sequences against a
   reference model: entries stay sorted and disjoint, match the model
   exactly, and the naive address allocator (next_va) hands out exactly
   the model's addresses.  Run for both locking disciplines. *)
let map_conformance locking script =
  in_sim (fun () ->
      let ctx = Vm_map.make_context ~pages:64 () in
      let map = Vm_map.create ~locking ctx in
      let model = ref [] (* (va, size), sorted by va *) in
      let model_next = ref 0x1000 in
      let model_overlap va size =
        List.exists (fun (v, s) -> va < v + s && v < va + size) !model
      in
      let model_insert va size =
        model := List.sort compare ((va, size) :: !model)
      in
      let entries_agree () =
        spans map = List.map (fun (v, s) -> (v, v + s)) !model
      in
      let sorted_disjoint () =
        let rec ok = function
          | (s1, e1) :: ((s2, _) :: _ as rest) ->
              s1 < e1 && e1 <= s2 && ok rest
          | [ (s1, e1) ] -> s1 < e1
          | [] -> true
        in
        ok (spans map)
      in
      let step choice =
        match choice mod 4 with
        | 0 ->
            let size = 1 + (choice mod 3) in
            let va = Vm_map.vm_allocate map ~size in
            let ok = va = !model_next && not (model_overlap va size) in
            model_insert va size;
            model_next := va + size;
            ok
        | 1 -> (
            let size = 1 + (choice mod 3) in
            let va = 0x1000 + (choice mod 24) in
            match Vm_map.vm_allocate_at map ~va ~size with
            | Ok got ->
                let ok = got = va && not (model_overlap va size) in
                model_insert va size;
                if va + size > !model_next then model_next := va + size;
                ok
            | Error `Overlap -> model_overlap va size)
        | 2 -> (
            match !model with
            | (va, _) :: rest -> (
                match Vm_map.vm_deallocate map ~va with
                | Ok () ->
                    model := rest;
                    true
                | Error `No_entry -> false)
            | [] -> Vm_map.vm_deallocate map ~va:0x9999 = Error `No_entry)
        | _ ->
            Vm_map.size map
            = List.fold_left (fun acc (_, s) -> acc + s) 0 !model
      in
      let ok =
        List.for_all
          (fun c -> step c && sorted_disjoint () && entries_agree ())
          script
      in
      Vm_map.release map;
      ok)

(* Lockstep: the same op script on a Coarse map and a Range map must
   produce identical results and identical entry lists — the range-lock
   conversion may not change the map's sequential semantics. *)
let map_lockstep script =
  in_sim (fun () ->
      let cm = Vm_map.create ~locking:Vm_map.Coarse (Vm_map.make_context ~pages:64 ()) in
      let rm = Vm_map.create ~locking:Vm_map.Range (Vm_map.make_context ~pages:64 ()) in
      let agree () = spans cm = spans rm in
      let step choice =
        match choice mod 5 with
        | 0 ->
            let size = 1 + (choice mod 3) in
            Vm_map.vm_allocate cm ~size = Vm_map.vm_allocate rm ~size
        | 1 ->
            let size = 1 + (choice mod 3) in
            let va = 0x1000 + (choice mod 24) in
            Vm_map.vm_allocate_at cm ~va ~size
            = Vm_map.vm_allocate_at rm ~va ~size
        | 2 ->
            let va = 0x1000 + (choice mod 32) in
            Vm_map.vm_deallocate cm ~va = Vm_map.vm_deallocate rm ~va
        | 3 -> (
            let va = 0x1000 + (choice mod 32) in
            match (Vm_fault.fault cm ~va, Vm_fault.fault rm ~va) with
            | Ok _, Ok _ -> true
            | Error a, Error b -> a = b
            | _ -> false)
        | _ -> Vm_map.size cm = Vm_map.size rm
      in
      let ok = List.for_all (fun c -> step c && agree ()) script in
      Vm_map.release cm;
      Vm_map.release rm;
      ok)

(* ------------------------------------------------------------------ *)
(* Scache vs Brlock vs a sequential RW-lock model, in lockstep          *)
(* ------------------------------------------------------------------ *)

(* One op script drives both distributed RW locks and a plain
   {readers; writer} model; every observable must agree after every op.
   Single-threaded, so only non-blocking transitions are generated (a
   read under our own write side would spin forever).  The try-write
   probe exercises both protocols' non-barging try paths: it must
   succeed exactly when the model says the lock is entirely free. *)
let rwlock_lockstep script =
  in_sim (fun () ->
      let module S = K.Locks.Scache in
      let module B = K.Locks.Brlock in
      let sc = S.make ~name:"ls.sc" in
      let br = B.make ~name:"ls.br" in
      let readers = ref [] (* (scache slot, brlock slot) tokens *) in
      let writer = ref false in
      List.for_all
        (fun choice ->
          let ops = ref [] in
          let op f = ops := f :: !ops in
          if not !writer then
            op (fun () ->
                let s = S.read_lock sc in
                let b = B.read_lock br in
                readers := (s, b) :: !readers);
          (match !readers with
          | (s, b) :: rest when not !writer ->
              op (fun () ->
                  S.read_unlock sc ~slot:s;
                  B.read_unlock br ~slot:b;
                  readers := rest)
          | _ -> ());
          if (not !writer) && !readers = [] then
            op (fun () ->
                ignore (S.write_lock sc);
                ignore (B.write_lock br);
                writer := true);
          if !writer then
            op (fun () ->
                S.write_unlock sc;
                B.write_unlock br;
                writer := false);
          (List.nth !ops (choice mod List.length !ops)) ();
          let model_locked = !writer || !readers <> [] in
          let model_free = (not !writer) && !readers = [] in
          let try_agrees =
            let a = S.Writer.try_acquire sc in
            if a then S.Writer.release sc;
            let b = B.Writer.try_acquire br in
            if b then B.Writer.release br;
            a = model_free && b = model_free
          in
          S.is_locked sc = model_locked
          && B.is_locked br = model_locked
          && try_agrees)
        script)

(* ------------------------------------------------------------------ *)
(* vm_cache vs an association-map model                                 *)
(* ------------------------------------------------------------------ *)

module Vm_cache = Mach_vm.Vm_cache

(* Random lookup / fill / evict / wire / unwire sequences against an
   offset -> ppn assoc model (plus a wired set): lookups must return
   exactly the model's binding (same ppn the fill produced), evict must
   refuse wired pages, and residency must track the model's cardinality.
   The pool has headroom so the implicit evict-on-shortage path never
   fires (its policy choice is not part of the sequential contract).
   Run for all three index-locking disciplines. *)
let cache_conformance locking script =
  in_sim (fun () ->
      let pages = 8 in
      let pool = Vm_page.create ~pages:(pages + 4) () in
      let cache = Vm_cache.create ~locking ~pool ~size:pages () in
      let model = Hashtbl.create 8 (* offset -> ppn *) in
      let wired = Hashtbl.create 8 in
      let step choice =
        let offset = choice mod pages in
        match choice mod 5 with
        | 0 -> (
            match Vm_cache.lookup cache ~offset with
            | Some ppn -> Hashtbl.find_opt model offset = Some ppn
            | None -> not (Hashtbl.mem model offset))
        | 1 -> (
            match Vm_cache.lookup_or_fill cache ~offset with
            | Ok ppn -> (
                match Hashtbl.find_opt model offset with
                | Some m -> m = ppn (* hit: the binding is stable *)
                | None ->
                    Hashtbl.replace model offset ppn;
                    true)
            | Error _ -> false (* headroom: a fill can never fail here *))
        | 2 ->
            let ok = Vm_cache.evict cache ~offset in
            let expected =
              Hashtbl.mem model offset && not (Hashtbl.mem wired offset)
            in
            if ok then Hashtbl.remove model offset;
            ok = expected
        | 3 ->
            let ok = Vm_cache.wire cache ~offset in
            let expected = Hashtbl.mem model offset in
            if ok then Hashtbl.replace wired offset ();
            ok = expected
        | _ -> (
            match Hashtbl.mem wired offset with
            | true ->
                Vm_cache.unwire cache ~offset;
                Hashtbl.remove wired offset;
                true
            | false -> true)
      in
      let ok =
        List.for_all
          (fun c ->
            step c && Vm_cache.resident cache = Hashtbl.length model)
          script
      in
      (* Wired pages pin residency; unwire them so terminate can drain. *)
      Hashtbl.iter (fun offset () -> Vm_cache.unwire cache ~offset) wired;
      Vm_cache.terminate cache;
      ok && Vm_cache.resident cache = 0)

(* ------------------------------------------------------------------ *)
(* Sharded port name space vs the single-table space, in lockstep       *)
(* ------------------------------------------------------------------ *)

module Port = Mach_ipc.Port
module Port_space = Mach_ipc.Port_space

(* One op script drives a 4-shard space and the single-table reference
   space; every observable must agree after every op.  The same ports
   are registered in both, so lookups must return identical identities,
   and a destroy-while-registered (the dead-name race a server
   termination creates) must be lazily purged by BOTH spaces' next
   lookup.  The final audit is the section 4 balance: after clearing
   both tables every surviving port is back to exactly its creator's
   reference — one table leaking or double-releasing its reference
   cannot pass. *)
let port_space_lockstep script =
  in_sim (fun () ->
      let s4 = Port_space.create ~name:"ls.sharded" ~shards:4 () in
      let s1 = Port_space.create ~name:"ls.flat" ~shards:1 () in
      let created = ref [] in
      let step choice =
        let pname = 1 + (choice mod 4) in
        match choice mod 5 with
        | 0 -> (
            let p = Port.create ~name:(Printf.sprintf "p%d" pname) () in
            match
              (Port_space.insert s4 ~pname p, Port_space.insert s1 ~pname p)
            with
            | Ok (), Ok () ->
                created := p :: !created;
                true
            | Error `Name_in_use, Error `Name_in_use ->
                Port.release p;
                true
            | _ ->
                Port.release p;
                false)
        | 1 -> (
            match
              (Port_space.lookup s4 ~pname, Port_space.lookup s1 ~pname)
            with
            | Some a, Some b ->
                let ok = Port.uid a = Port.uid b && Port.is_active a in
                Port.release a;
                Port.release b;
                ok
            | None, None -> true
            | Some a, None ->
                Port.release a;
                false
            | None, Some b ->
                Port.release b;
                false)
        | 2 -> Port_space.remove s4 ~pname = Port_space.remove s1 ~pname
        | 3 -> (
            (* the dead-name race: kill a registered port in place; both
               spaces must purge it on their next lookup *)
            match Port_space.lookup s4 ~pname with
            | Some p ->
                Port.destroy p;
                Port.release p;
                Port_space.lookup s4 ~pname = None
                && Port_space.lookup s1 ~pname = None
            | None -> true)
        | _ -> Port_space.size s4 = Port_space.size s1
      in
      let ok = List.for_all step script in
      Port_space.clear s4;
      Port_space.clear s1;
      let balanced =
        List.for_all
          (fun p ->
            let one = Port.ref_count p = 1 in
            Port.release p;
            one)
          !created
      in
      ok && balanced)

(* ------------------------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop "zalloc conforms to set model" zalloc_ops_gen zalloc_conformance;
      prop "page pool conforms to counter model" zalloc_ops_gen
        pool_conformance;
      prop "refcount balance" QCheck.(int_range 0 30) refcount_balance;
      prop "complex lock conforms to rw model"
        QCheck.(list_of_size (Gen.int_range 1 80) (int_range 0 5))
        rw_conformance;
      prop "complex lock matrix: spin, plain" (script_gen 80)
        (cx_conformance ~can_sleep:false ~use_recursive:false);
      prop "complex lock matrix: spin, recursive" (script_gen 80)
        (cx_conformance ~can_sleep:false ~use_recursive:true);
      prop "complex lock matrix: sleep, plain" (script_gen 80)
        (cx_conformance ~can_sleep:true ~use_recursive:false);
      prop "complex lock matrix: sleep, recursive" (script_gen 80)
        (cx_conformance ~can_sleep:true ~use_recursive:true);
      prop "gated count conforms to gate model" (script_gen 60)
        gated_conformance;
      prop "fresh events unique" QCheck.(int_range 1 100) fresh_events_unique;
      prop "wakeup with no waiters wakes none" QCheck.int
        wakeup_no_waiters_is_zero;
      prop "vm_map (Coarse) conforms to interval model" (script_gen 40)
        (map_conformance Vm_map.Coarse);
      prop "vm_map (Range) conforms to interval model" (script_gen 40)
        (map_conformance Vm_map.Range);
      prop "vm_map lockstep: Range == Coarse" (script_gen 40) map_lockstep;
      prop "rw lockstep: scache == brlock == model" (script_gen 60)
        rwlock_lockstep;
      prop "vm_cache (scache) conforms to assoc model" (script_gen 50)
        (cache_conformance Vm_cache.Scache);
      prop "vm_cache (brlock) conforms to assoc model" (script_gen 50)
        (cache_conformance Vm_cache.Brlock_rw);
      prop "vm_cache (mutex) conforms to assoc model" (script_gen 50)
        (cache_conformance Vm_cache.Mutex);
      prop "port space lockstep: sharded == single table" (script_gen 60)
        port_space_lockstep;
    ]

let () = Alcotest.run "properties" [ ("models", qcheck_cases) ]
