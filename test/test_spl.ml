(* Spl lattice laws, including qcheck properties. *)

module Spl = Mach_core.Spl

let arb_spl =
  QCheck.make
    ~print:(fun s -> Spl.to_string s)
    (QCheck.Gen.oneofl Spl.all)

let prop name gen f = QCheck.Test.make ~count:200 ~name gen f

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop "rank/of_rank roundtrip" arb_spl (fun s ->
          Spl.equal (Spl.of_rank (Spl.rank s)) s);
      prop "compare total order agrees with rank" (QCheck.pair arb_spl arb_spl)
        (fun (a, b) -> compare (Spl.rank a) (Spl.rank b) = Spl.compare a b);
      prop "max is upper bound" (QCheck.pair arb_spl arb_spl) (fun (a, b) ->
          Spl.(a <= max a b) && Spl.(b <= max a b));
      prop "min is lower bound" (QCheck.pair arb_spl arb_spl) (fun (a, b) ->
          Spl.(min a b <= a) && Spl.(min a b <= b));
      prop "masks iff level <= at" (QCheck.pair arb_spl arb_spl)
        (fun (at, level) ->
          Spl.masks ~at level = (Spl.rank level <= Spl.rank at));
      prop "masking is monotone in at" (QCheck.pair arb_spl arb_spl)
        (fun (a, b) ->
          let lo = Spl.min a b and hi = Spl.max a b in
          List.for_all
            (fun l -> (not (Spl.masks ~at:lo l)) || Spl.masks ~at:hi l)
            Spl.all);
    ]

let unit_cases =
  [
    Alcotest.test_case "all is sorted by rank" `Quick (fun () ->
        let ranks = List.map Spl.rank Spl.all in
        Alcotest.(check (list int)) "ranks" [ 0; 1; 2; 3; 4; 5; 6 ] ranks);
    Alcotest.test_case "spl0 masks nothing above it" `Quick (fun () ->
        List.iter
          (fun l ->
            if not (Spl.equal l Spl.Spl0) then
              Alcotest.(check bool)
                (Spl.to_string l ^ " delivered at spl0")
                false
                (Spl.masks ~at:Spl.Spl0 l))
          Spl.all);
    Alcotest.test_case "splhigh masks everything" `Quick (fun () ->
        List.iter
          (fun l ->
            Alcotest.(check bool)
              (Spl.to_string l ^ " masked at splhigh")
              true
              (Spl.masks ~at:Spl.Splhigh l))
          Spl.all);
    Alcotest.test_case "equal level is masked (same-spl rule)" `Quick
      (fun () ->
        (* An interrupt at exactly the cpu's current level must NOT be
           delivered: section 7's same-spl rule relies on a lock holder at
           splX masking the splX interrupt that could spin on the same
           lock.  This pins the <= (not <) in the masking predicate. *)
        List.iter
          (fun l ->
            Alcotest.(check bool)
              (Spl.to_string l ^ " masked at its own level")
              true
              (Spl.masks ~at:l l))
          Spl.all);
    Alcotest.test_case "to_string unique" `Quick (fun () ->
        let names = List.map Spl.to_string Spl.all in
        Alcotest.(check int)
          "distinct" (List.length names)
          (List.length (List.sort_uniq compare names)));
  ]

let () =
  Alcotest.run "spl" [ ("laws", unit_cases); ("properties", qcheck_cases) ]
