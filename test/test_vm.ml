(* The VM subsystem: page pool, pmaps/pv-lists and their lock orders, TLB
   shootdown, memory objects, maps, faults, and the vm_map_pageable
   deadlock of section 7.1 (experiment E6). *)

module Engine = Mach_sim.Sim_engine
module Explore = Mach_sim.Sim_explore
module K = Mach_ksync.Ksync
module Spl = Mach_core.Spl
module Vm = Mach_vm
open Test_support

let mk_ctx ?(pages = 64) () = Vm.Vm_map.make_context ~pages ()

(* ------------------------------------------------------------------ *)
(* Page pool                                                            *)
(* ------------------------------------------------------------------ *)

let test_pool_alloc_free () =
  in_sim (fun () ->
      let pool = Vm.Vm_page.create ~pages:4 () in
      check_int "all free" 4 (Vm.Vm_page.free_count pool);
      let pages = List.init 4 (fun _ -> Option.get (Vm.Vm_page.alloc pool)) in
      check_bool "exhausted" true (Vm.Vm_page.alloc pool = None);
      List.iter (Vm.Vm_page.free pool) pages;
      check_int "all free again" 4 (Vm.Vm_page.free_count pool))

let test_pool_blocking_alloc () =
  ignore
    (Engine.run (fun () ->
         let pool = Vm.Vm_page.create ~pages:1 () in
         let p0 = Option.get (Vm.Vm_page.alloc pool) in
         let got = ref None in
         let waiter =
           Engine.spawn ~name:"allocator" (fun () ->
               got := Some (Vm.Vm_page.alloc_blocking pool))
         in
         wait_until (fun () -> Vm.Vm_page.free_wanted pool);
         check_bool "still blocked" true (!got = None);
         Vm.Vm_page.free pool p0;
         Engine.join waiter;
         check_bool "served" true (!got = Some p0)))

let test_pool_double_free_panics () =
  match
    Engine.run_outcome (fun () ->
        let pool = Vm.Vm_page.create ~pages:2 () in
        let p = Option.get (Vm.Vm_page.alloc pool) in
        Vm.Vm_page.free pool p;
        Vm.Vm_page.free pool p)
  with
  | Engine.Panicked msg -> check_bool "bad free" true (contains msg "bad free")
  | _ -> Alcotest.fail "double free must panic"

(* ------------------------------------------------------------------ *)
(* Pmap + TLB + shootdown                                               *)
(* ------------------------------------------------------------------ *)

let test_pmap_enter_translate_remove () =
  in_sim (fun () ->
      let pm = Vm.Pmap.create ~name:"pm" () in
      Vm.Pmap.enter pm ~va:0x1000 ~ppn:7 ~prot:Vm.Tlb.Read_write;
      (match Vm.Pmap.translate pm ~va:0x1000 with
      | Some e ->
          check_int "ppn" 7 e.Vm.Tlb.ppn;
          check_bool "prot" true (e.Vm.Tlb.prot = Vm.Tlb.Read_write)
      | None -> Alcotest.fail "translation missing");
      check_int "resident" 1 (Vm.Pmap.resident_count pm);
      check_bool "remove returns page" true (Vm.Pmap.remove pm ~va:0x1000 = Some 7);
      check_bool "gone" true (Vm.Pmap.translate pm ~va:0x1000 = None))

let test_shootdown_invalidates_remote_tlb () =
  ignore
    (Engine.run
       ~cfg:{ Mach_sim.Sim_config.default with Mach_sim.Sim_config.cpus = 3 }
       (fun () ->
         let pm = Vm.Pmap.create () in
         let loaded = Engine.Cell.make 0 in
         let proceed = Engine.Cell.make 0 in
         (* A thread on cpu 1 uses the mapping, loading its TLB. *)
         let user =
           Engine.spawn ~name:"user" ~bound:1 (fun () ->
               Vm.Pmap.activate pm ~cpu:1;
               Vm.Pmap.enter pm ~va:0x2000 ~ppn:3 ~prot:Vm.Tlb.Read_write;
               ignore (Vm.Pmap.translate pm ~va:0x2000);
               Engine.Cell.set loaded 1;
               (* Spin at spl0 so the shootdown IPI can arrive. *)
               Engine.spin_hint "proceed";
               while Engine.Cell.get proceed = 0 do
                 Engine.pause ()
               done;
               (* After the shootdown, the stale translation must be gone
                  from this cpu's TLB. *)
               if
                 Vm.Tlb.lookup ~cpu:(Engine.current_cpu ())
                   ~pmap_id:(Vm.Pmap.id pm) ~va:0x2000
                 <> None
               then Engine.fatal "stale TLB entry survived the shootdown")
         in
         let remover =
           Engine.spawn ~name:"remover" ~bound:2 (fun () ->
               Engine.spin_hint "loaded";
               while Engine.Cell.get loaded = 0 do
                 Engine.pause ()
               done;
               Vm.Pmap.activate pm ~cpu:2;
               check_bool "remove" true (Vm.Pmap.remove pm ~va:0x2000 = Some 3);
               Engine.Cell.set proceed 1)
         in
         Engine.join remover;
         Engine.join user;
         check_bool "a shootdown happened" true
           (Vm.Tlb_shootdown.shootdowns_performed () > 0)))

let test_shootdown_requires_splvm () =
  match
    Engine.run_outcome (fun () ->
        Vm.Tlb_shootdown.shootdown ~pmap_id:0 ~targets:[]
          ~invalidate:(fun ~cpu -> ignore cpu)
          ~commit:(fun () -> ()))
  with
  | Engine.Panicked msg -> check_bool "spl rule" true (contains msg "splvm")
  | _ -> Alcotest.fail "shootdown below splvm must panic"

let test_shootdown_skips_pmap_critical_cpu () =
  (* The section 7 special logic: a cpu spinning on a pmap lock at splvm
     cannot take the barrier interrupt and must be excluded, otherwise
     the shootdown initiator (holding that pmap lock) deadlocks. *)
  let v =
    Explore.run ~cpus:3
      ~seeds:(List.init 15 (fun i -> i + 1))
      (fun () ->
        let pm = Vm.Pmap.create () in
        Vm.Pmap.enter pm ~va:0x3000 ~ppn:1 ~prot:Vm.Tlb.Read_write;
        let spinner_started = Engine.Cell.make 0 in
        (* cpu 1 and cpu 2 both use the pmap. *)
        Vm.Pmap.activate pm ~cpu:1;
        Vm.Pmap.activate pm ~cpu:2;
        (* A thread bound to cpu 1 hammers the pmap (it will often be in
           a pmap critical section when the shootdown fires). *)
        let stop = Engine.Cell.make 0 in
        let hammer =
          Engine.spawn ~name:"hammer" ~bound:1 (fun () ->
              Engine.Cell.set spinner_started 1;
              while Engine.Cell.get stop = 0 do
                ignore (Vm.Pmap.translate pm ~va:0x3000);
                Engine.pause ()
              done)
        in
        (* The initiator removes the mapping (shootdown inside). *)
        let initiator =
          Engine.spawn ~name:"initiator" ~bound:0 (fun () ->
              Engine.spin_hint "spinner-started";
              while Engine.Cell.get spinner_started = 0 do
                Engine.pause ()
              done;
              ignore (Vm.Pmap.remove pm ~va:0x3000);
              Engine.Cell.set stop 1)
        in
        Engine.join initiator;
        Engine.join hammer)
  in
  check_bool "no schedule deadlocks" true (Explore.all_completed v)

(* ------------------------------------------------------------------ *)
(* pv lists and the pmap system lock                                    *)
(* ------------------------------------------------------------------ *)

let test_pv_list_tracks_mappings () =
  in_sim (fun () ->
      let pv = Vm.Pv_list.create () in
      let pm1 = Vm.Pmap.create () and pm2 = Vm.Pmap.create () in
      Vm.Pv_list.enter pv ~ppn:5 ~pmap:pm1 ~va:0x1000;
      Vm.Pv_list.enter pv ~ppn:5 ~pmap:pm2 ~va:0x8000;
      check_int "two mappings" 2 (List.length (Vm.Pv_list.mappings pv ~ppn:5));
      Vm.Pv_list.remove pv ~ppn:5 ~pmap:pm1 ~va:0x1000;
      check_int "one left" 1 (List.length (Vm.Pv_list.mappings pv ~ppn:5)))

let test_pv_remove_all_breaks_mappings () =
  in_sim (fun () ->
      let pv = Vm.Pv_list.create () in
      let psys = Vm.Pmap_system.create () in
      let pm1 = Vm.Pmap.create () and pm2 = Vm.Pmap.create () in
      Vm.Pmap.enter pm1 ~va:0x1000 ~ppn:5 ~prot:Vm.Tlb.Read_write;
      Vm.Pmap.enter pm2 ~va:0x8000 ~ppn:5 ~prot:Vm.Tlb.Read_only;
      Vm.Pv_list.enter pv ~ppn:5 ~pmap:pm1 ~va:0x1000;
      Vm.Pv_list.enter pv ~ppn:5 ~pmap:pm2 ~va:0x8000;
      let broken =
        Vm.Pmap_system.reverse psys (fun () ->
            Vm.Pv_list.remove_all_mappings pv ~ppn:5)
      in
      check_int "both broken" 2 broken;
      check_bool "pm1 empty" true (Vm.Pmap.translate pm1 ~va:0x1000 = None);
      check_bool "pm2 empty" true (Vm.Pmap.translate pm2 ~va:0x8000 = None))

let test_fault_vs_pageout_orders_explored () =
  (* Forward (pmap->pv) and reverse (pv->pmap) orders running
     concurrently, arbitrated by the pmap system lock: no deadlock on any
     schedule (experiment E12's correctness side). *)
  let v =
    Explore.run ~cpus:3
      ~seeds:(List.init 15 (fun i -> i + 1))
      (fun () ->
        let ctx = mk_ctx ~pages:16 () in
        let map = Vm.Vm_map.create ctx in
        let va = Vm.Vm_map.vm_allocate map ~size:4 in
        (* populate *)
        for i = 0 to 3 do
          match Vm.Vm_fault.fault map ~va:(va + i) with
          | Ok _ -> ()
          | Error _ -> Engine.fatal "populate fault failed"
        done;
        let faulter =
          Engine.spawn ~name:"faulter" (fun () ->
              for i = 0 to 3 do
                ignore (Vm.Vm_fault.fault map ~va:(va + i))
              done)
        in
        let pageout =
          Engine.spawn ~name:"pageout" (fun () ->
              ignore (Vm.Vm_pageout.reclaim_from_map map))
        in
        Engine.join faulter;
        Engine.join pageout;
        Vm.Vm_map.release map)
  in
  check_bool "no deadlocks across orders" true (Explore.all_completed v)

(* ------------------------------------------------------------------ *)
(* Memory objects                                                       *)
(* ------------------------------------------------------------------ *)

let test_object_pages_and_termination () =
  in_sim (fun () ->
      let pool = Vm.Vm_page.create ~pages:8 () in
      let obj = Vm.Vm_object.create ~name:"obj" ~pool ~size:4 () in
      Vm.Vm_object.with_lock obj (fun () ->
          let ppn = Option.get (Vm.Vm_page.alloc pool) in
          ignore (Vm.Vm_object.insert_page obj ~offset:0 ~ppn);
          check_bool "resident" true (Vm.Vm_object.page_at obj ~offset:0 <> None));
      check_int "one page held" 7 (Vm.Vm_page.free_count pool);
      Vm.Vm_object.terminate obj;
      check_int "pages returned on termination" 8 (Vm.Vm_page.free_count pool);
      check_bool "inactive" false (Vm.Vm_object.is_active obj);
      Vm.Vm_object.release obj)

let test_paging_count_excludes_termination () =
  ignore
    (Engine.run (fun () ->
         let pool = Vm.Vm_page.create ~pages:8 () in
         let obj = Vm.Vm_object.create ~pool ~size:4 () in
         Vm.Vm_object.lock obj;
         check_bool "paging starts" true (Vm.Vm_object.paging_begin obj);
         Vm.Vm_object.unlock obj;
         let terminated = ref false in
         let terminator =
           Engine.spawn ~name:"terminator" (fun () ->
               Vm.Vm_object.terminate obj;
               terminated := true)
         in
         wait_until (fun () -> K.Ev.waiting_on terminator <> None);
         check_bool "termination waits for paging" false !terminated;
         Vm.Vm_object.lock obj;
         Vm.Vm_object.paging_end obj;
         Vm.Vm_object.unlock obj;
         Engine.join terminator;
         check_bool "terminated after drain" true !terminated;
         Vm.Vm_object.release obj))

let test_pager_ports_created_once () =
  (* The section 5 customized lock: concurrent callers, one creation. *)
  let v =
    Explore.run ~cpus:4
      ~seeds:(List.init 15 (fun i -> i + 1))
      (fun () ->
        let pool = Vm.Vm_page.create ~pages:4 () in
        let obj = Vm.Vm_object.create ~pool ~size:4 () in
        let ports = Array.make 4 None in
        let ts =
          List.init 4 (fun i ->
              Engine.spawn (fun () ->
                  let p, _, _ = Vm.Vm_object.ensure_pager_ports obj in
                  ports.(i) <- Some (Mach_ipc.Port.uid p)))
        in
        List.iter Engine.join ts;
        let uids =
          Array.to_list ports |> List.filter_map Fun.id |> List.sort_uniq compare
        in
        if List.length uids <> 1 then
          Engine.fatal "pager ports created more than once")
  in
  check_bool "at most once on all schedules" true (Explore.all_completed v)

(* ------------------------------------------------------------------ *)
(* Maps and faults                                                      *)
(* ------------------------------------------------------------------ *)

let test_allocate_fault_deallocate () =
  in_sim (fun () ->
      let ctx = mk_ctx () in
      let map = Vm.Vm_map.create ctx in
      let va = Vm.Vm_map.vm_allocate map ~size:8 in
      (match Vm.Vm_fault.fault map ~va with
      | Ok ppn ->
          (* the translation is installed *)
          (match Vm.Pmap.translate (Vm.Vm_map.pmap map) ~va with
          | Some e -> check_int "mapped" ppn e.Vm.Tlb.ppn
          | None -> Alcotest.fail "no translation after fault")
      | Error _ -> Alcotest.fail "fault failed");
      let free_before = Vm.Vm_page.free_count ctx.Vm.Vm_map.pool in
      (match Vm.Vm_map.vm_deallocate map ~va with
      | Ok () -> ()
      | Error `No_entry -> Alcotest.fail "deallocate failed");
      check_int "page freed" (free_before + 1)
        (Vm.Vm_page.free_count ctx.Vm.Vm_map.pool);
      check_bool "translation gone" true
        (Vm.Pmap.translate (Vm.Vm_map.pmap map) ~va = None);
      Vm.Vm_map.release map)

let test_fault_bad_address () =
  in_sim (fun () ->
      let ctx = mk_ctx () in
      let map = Vm.Vm_map.create ctx in
      (match Vm.Vm_fault.fault map ~va:0xdead000 with
      | Error `Bad_address -> ()
      | _ -> Alcotest.fail "expected Bad_address");
      Vm.Vm_map.release map)

let test_fault_waits_for_memory_then_completes () =
  ignore
    (Engine.run (fun () ->
         let ctx = mk_ctx ~pages:2 () in
         let map = Vm.Vm_map.create ctx in
         let va = Vm.Vm_map.vm_allocate map ~size:4 in
         (* exhaust the pool *)
         ignore (Vm.Vm_fault.fault map ~va);
         ignore (Vm.Vm_fault.fault map ~va:(va + 1));
         let done_flag = ref false in
         let faulter =
           Engine.spawn ~name:"faulter" (fun () ->
               (match Vm.Vm_fault.fault map ~va:(va + 2) with
               | Ok _ -> ()
               | Error _ -> Engine.fatal "fault failed");
               done_flag := true)
         in
         wait_until (fun () -> Vm.Vm_page.free_wanted ctx.Vm.Vm_map.pool);
         check_bool "fault is waiting for memory" false !done_flag;
         (* a pageout pass frees memory (nothing is wired) *)
         let freed = Vm.Vm_pageout.reclaim_from_map map in
         check_bool "something reclaimed" true (freed > 0);
         Engine.join faulter;
         check_bool "fault completed after reclaim" true !done_flag;
         Vm.Vm_map.release map))

(* ------------------------------------------------------------------ *)
(* vm_map_pageable: the section 7.1 deadlock and its rewrite (E6)       *)
(* ------------------------------------------------------------------ *)

(* Shared setup: a map with an entry of already-resident unwired pages
   (reclaimable) and a second entry to be wired; the pool is too small to
   wire without reclaiming. *)
let pageable_scenario ~use_recursive () =
  let ctx = mk_ctx ~pages:4 () in
  let map = Vm.Vm_map.create ctx in
  let reclaimable = Vm.Vm_map.vm_allocate map ~size:3 in
  for i = 0 to 2 do
    match Vm.Vm_fault.fault map ~va:(reclaimable + i) with
    | Ok _ -> ()
    | Error _ -> Engine.fatal "populate failed"
  done;
  (* one page left free; wiring needs three *)
  let wired_va = Vm.Vm_map.vm_allocate map ~size:3 in
  let daemon = Vm.Vm_pageout.start_daemon ~victims:[ map ] in
  let wire =
    if use_recursive then Vm.Vm_pageable.wire_recursive
    else Vm.Vm_pageable.wire_rewritten
  in
  (match wire map ~va:wired_va ~pages:3 with
  | Ok () -> ()
  | Error _ -> Engine.fatal "wire failed");
  Vm.Vm_pageout.stop_daemon daemon;
  Vm.Vm_map.release map

let test_recursive_wire_deadlocks () =
  (* The paper: "While these deadlocks are difficult to cause, they have
     been observed in practice."  Exploration finds a schedule. *)
  match
    Explore.find_first_deadlock ~cpus:3 ~max_seeds:60
      (pageable_scenario ~use_recursive:true)
  with
  | Some (_seed, report) ->
      check_bool "pageout is part of the deadlock" true
        (contains report "pageout")
  | None ->
      Alcotest.fail
        "the recursive vm_map_pageable should deadlock on some schedule"

let test_rewritten_wire_never_deadlocks () =
  let v =
    Explore.run ~cpus:3
      ~seeds:(List.init 60 (fun i -> i + 1))
      (pageable_scenario ~use_recursive:false)
  in
  check_bool "the section 7.1 rewrite never deadlocks" true
    (Explore.all_completed v)

let test_wire_pins_pages () =
  in_sim (fun () ->
      let ctx = mk_ctx ~pages:8 () in
      let map = Vm.Vm_map.create ctx in
      let va = Vm.Vm_map.vm_allocate map ~size:3 in
      (match Vm.Vm_pageable.wire_rewritten map ~va ~pages:3 with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "wire failed");
      check_int "three wired pages" 3 (Vm.Vm_pageable.wired_page_count map);
      (* pageout cannot touch them *)
      check_int "nothing reclaimable" 0 (Vm.Vm_pageout.reclaim_from_map map);
      Vm.Vm_pageable.unwire map ~va ~pages:3;
      check_int "unwired" 0 (Vm.Vm_pageable.wired_page_count map);
      check_int "now reclaimable" 3 (Vm.Vm_pageout.reclaim_from_map map);
      Vm.Vm_map.release map)

(* ------------------------------------------------------------------ *)
(* Range-locked maps (experiment E16)                                   *)
(* ------------------------------------------------------------------ *)

module Scenarios = Mach_kernel.Scenarios

let test_range_allocate_fault_deallocate () =
  in_sim (fun () ->
      let ctx = mk_ctx () in
      let map = Vm.Vm_map.create ~locking:Vm.Vm_map.Range ctx in
      check_bool "range mode" true (Vm.Vm_map.locking map = Vm.Vm_map.Range);
      let va = Vm.Vm_map.vm_allocate map ~size:8 in
      (match Vm.Vm_fault.fault map ~va with
      | Ok ppn -> (
          match Vm.Pmap.translate (Vm.Vm_map.pmap map) ~va with
          | Some e -> check_int "mapped" ppn e.Vm.Tlb.ppn
          | None -> Alcotest.fail "no translation after fault")
      | Error _ -> Alcotest.fail "fault failed");
      (match Vm.Vm_map.vm_allocate_at map ~va ~size:2 with
      | Error `Overlap -> ()
      | Ok _ -> Alcotest.fail "overlapping allocate_at admitted");
      let free_before = Vm.Vm_page.free_count ctx.Vm.Vm_map.pool in
      (match Vm.Vm_map.vm_deallocate map ~va with
      | Ok () -> ()
      | Error `No_entry -> Alcotest.fail "deallocate failed");
      check_int "page freed" (free_before + 1)
        (Vm.Vm_page.free_count ctx.Vm.Vm_map.pool);
      check_bool "translation gone" true
        (Vm.Pmap.translate (Vm.Vm_map.pmap map) ~va = None);
      Vm.Vm_map.release map)

let test_range_wire_pins_pages () =
  in_sim (fun () ->
      let ctx = mk_ctx ~pages:8 () in
      let map = Vm.Vm_map.create ~locking:Vm.Vm_map.Range ctx in
      let va = Vm.Vm_map.vm_allocate map ~size:3 in
      (* wire_recursive dispatches to the rewrite under Range locking:
         recursion is a property of the coarse map lock. *)
      (match Vm.Vm_pageable.wire_recursive map ~va ~pages:3 with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "wire failed");
      check_int "three wired pages" 3 (Vm.Vm_pageable.wired_page_count map);
      check_int "nothing reclaimable" 0 (Vm.Vm_pageout.reclaim_from_map map);
      Vm.Vm_pageable.unwire map ~va ~pages:3;
      check_int "unwired" 0 (Vm.Vm_pageable.wired_page_count map);
      Vm.Vm_map.release map)

let test_range_storm_explored () =
  (* Disjoint per-thread slices of one Range map, allocate_at / fault /
     deallocate in a loop, across seeds: no deadlock, no panic, and the
     map invariants hold on every schedule (the scenario is fatal on any
     unexpected outcome). *)
  let v =
    Explore.run ~cpus:4
      ~seeds:(List.init 20 (fun i -> i + 1))
      (fun () ->
        Scenarios.vm_fault_storm ~locking:Vm.Vm_map.Range ~threads:4
          ~pages_per_thread:2 ~rounds:2 ())
  in
  check_bool "storm completes on all schedules" true (Explore.all_completed v)

let test_range_deadlock_names_ranges () =
  (* The waits-for integration: an ABBA deadlock across two ranges of
     one lock is reported with the exact [lo,hi) of each range. *)
  let cfg =
    {
      Mach_sim.Sim_config.default with
      Mach_sim.Sim_config.cpus = 2;
      track_waits = true;
    }
  in
  match Engine.run_outcome ~cfg Scenarios.range_abba with
  | Engine.Deadlocked (Engine.Sleep_deadlock, report) ->
      check_bool "cycle names the range lock" true
        (contains report "range lock abba.range");
      check_bool "cycle names the exact range" true
        (contains report "[0,0x4)")
  | _ -> Alcotest.fail "range ABBA must sleep-deadlock"

(* ------------------------------------------------------------------ *)
(* Terminate/release pairing and unconditional underflow detection      *)
(* ------------------------------------------------------------------ *)

(* A full map lifecycle — including release with live entries, the
   terminate-then-release path — is reference-balanced: with checking
   disabled the only trap still armed is the refcount underflow one, so
   completing cleanly proves no double release hides in the pairing. *)
let test_terminate_release_pairing_balanced () =
  K.Ref.set_checking false;
  let outcome =
    Engine.run_outcome (fun () ->
        List.iter
          (fun locking ->
            let ctx = mk_ctx () in
            let map = Vm.Vm_map.create ~locking ctx in
            let va = Vm.Vm_map.vm_allocate map ~size:4 in
            ignore (Vm.Vm_fault.fault map ~va);
            (match Vm.Vm_map.vm_deallocate map ~va with
            | Ok () -> ()
            | Error `No_entry -> Engine.fatal "deallocate failed");
            let va2 = Vm.Vm_map.vm_allocate map ~size:2 in
            ignore (Vm.Vm_fault.fault map ~va:va2);
            (* live entry at release: destroy_entry terminates and
               releases the object exactly once *)
            Vm.Vm_map.release map)
          [ Vm.Vm_map.Coarse; Vm.Vm_map.Range ])
  in
  K.Ref.set_checking true;
  match outcome with
  | Engine.Completed _ -> ()
  | Engine.Panicked msg -> Alcotest.failf "unbalanced pairing: %s" msg
  | _ -> Alcotest.fail "map lifecycle did not complete"

(* The regression half: an actual double release must still panic with
   checking disabled — underflow detection is not debug-only. *)
let test_double_release_trapped_unconditionally () =
  K.Ref.set_checking false;
  let outcome =
    Engine.run_outcome (fun () ->
        let pool = Vm.Vm_page.create ~pages:4 () in
        let obj = Vm.Vm_object.create ~pool ~size:2 () in
        Vm.Vm_object.terminate obj;
        Vm.Vm_object.release obj;
        Vm.Vm_object.release obj)
  in
  K.Ref.set_checking true;
  match outcome with
  | Engine.Panicked msg ->
      check_bool "underflow trapped" true (contains msg "double free")
  | _ -> Alcotest.fail "double release must panic even with checking off"

let () =
  Alcotest.run "vm"
    [
      ( "page pool",
        [
          Alcotest.test_case "alloc/free" `Quick test_pool_alloc_free;
          Alcotest.test_case "blocking alloc" `Quick test_pool_blocking_alloc;
          Alcotest.test_case "double free" `Quick test_pool_double_free_panics;
        ] );
      ( "pmap + shootdown",
        [
          Alcotest.test_case "enter/translate/remove" `Quick
            test_pmap_enter_translate_remove;
          Alcotest.test_case "shootdown invalidates remote TLB" `Quick
            test_shootdown_invalidates_remote_tlb;
          Alcotest.test_case "shootdown needs splvm" `Quick
            test_shootdown_requires_splvm;
          Alcotest.test_case "pmap-critical special logic" `Slow
            test_shootdown_skips_pmap_critical_cpu;
        ] );
      ( "pv lists + system lock",
        [
          Alcotest.test_case "tracking" `Quick test_pv_list_tracks_mappings;
          Alcotest.test_case "remove_all breaks mappings" `Quick
            test_pv_remove_all_breaks_mappings;
          Alcotest.test_case "fault vs pageout orders" `Slow
            test_fault_vs_pageout_orders_explored;
        ] );
      ( "memory objects",
        [
          Alcotest.test_case "pages + termination" `Quick
            test_object_pages_and_termination;
          Alcotest.test_case "paging count excludes termination" `Quick
            test_paging_count_excludes_termination;
          Alcotest.test_case "pager ports once" `Slow
            test_pager_ports_created_once;
        ] );
      ( "maps + faults",
        [
          Alcotest.test_case "allocate/fault/deallocate" `Quick
            test_allocate_fault_deallocate;
          Alcotest.test_case "bad address" `Quick test_fault_bad_address;
          Alcotest.test_case "fault waits for memory" `Quick
            test_fault_waits_for_memory_then_completes;
        ] );
      ( "vm_map_pageable (section 7.1)",
        [
          Alcotest.test_case "recursive wire deadlocks" `Quick
            test_recursive_wire_deadlocks;
          Alcotest.test_case "rewrite never deadlocks" `Slow
            test_rewritten_wire_never_deadlocks;
          Alcotest.test_case "wire pins pages" `Quick test_wire_pins_pages;
        ] );
      ( "range-locked maps (E16)",
        [
          Alcotest.test_case "allocate/fault/deallocate under Range" `Quick
            test_range_allocate_fault_deallocate;
          Alcotest.test_case "wire pins pages under Range" `Quick
            test_range_wire_pins_pages;
          Alcotest.test_case "fault storm explored" `Slow
            test_range_storm_explored;
          Alcotest.test_case "deadlock report names exact ranges" `Quick
            test_range_deadlock_names_ranges;
        ] );
      ( "refcount pairing",
        [
          Alcotest.test_case "terminate/release pairing balanced" `Quick
            test_terminate_release_pairing_balanced;
          Alcotest.test_case "double release trapped with checking off" `Quick
            test_double_release_trapped_unconditionally;
        ] );
    ]
